(* Statistical tests for the open-loop workload generator: the sampled
   schedules must actually have the distributions the spec promises.
   Every test is deterministic (fixed seeds, fixed critical values), so
   a failure is a code regression, not sampling noise. *)

module W = Leotp_scenario.Workload
module Rng = Leotp_util.Rng

let spec = W.default

(* --- Poisson inter-arrivals ------------------------------------------- *)

(* With the diurnal curve flattened, one city's arrival process is
   homogeneous Poisson, so inter-arrival gaps are Exp(rate).  Chi-squared
   against 8 equal-probability exponential bins; df = 7, critical value
   at p = 0.001 is 24.32.  A generator bug (wrong thinning, biased rng)
   blows far past this; honest sampling noise does not reach it. *)
let test_poisson_interarrivals () =
  let s =
    {
      spec with
      W.seed = 11;
      cities = 1;
      diurnal_amplitude = 0.0;
      rate_per_city = 2.0;
      horizon = 2000.0;
    }
  in
  let arrivals = W.generate s in
  let times = List.map (fun (a : W.arrival) -> a.W.at) arrivals in
  let gaps =
    List.map2 (fun b a -> b -. a)
      (List.tl times)
      (List.filteri (fun i _ -> i < List.length times - 1) times)
  in
  let n = List.length gaps in
  Alcotest.(check bool) "enough samples" true (n > 2000);
  let rate = s.W.rate_per_city in
  let bins = 8 in
  (* Equal-probability bin edges: F^-1(k/bins) for Exp(rate). *)
  let edge k = -.log (1.0 -. (float_of_int k /. float_of_int bins)) /. rate in
  let counts = Array.make bins 0 in
  List.iter
    (fun g ->
      let rec find k =
        if k >= bins - 1 then bins - 1
        else if g < edge (k + 1) then k
        else find (k + 1)
      in
      let b = find 0 in
      counts.(b) <- counts.(b) + 1)
    gaps;
  let expect = float_of_int n /. float_of_int bins in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expect in
        acc +. (d *. d /. expect))
      0.0 counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f < 24.32 (df=7, p=0.001)" chi2)
    true (chi2 < 24.32)

(* Gaps must also be uncorrelated: lag-1 autocorrelation of an iid
   exponential sequence is 0; a stateful-sampler bug shows up here even
   when the marginal distribution stays right. *)
let test_interarrival_independence () =
  let s =
    {
      spec with
      W.seed = 12;
      cities = 1;
      diurnal_amplitude = 0.0;
      rate_per_city = 2.0;
      horizon = 2000.0;
    }
  in
  let times =
    List.map (fun (a : W.arrival) -> a.W.at) (W.generate s)
  in
  let gaps =
    Array.of_list
      (List.map2 (fun b a -> b -. a)
         (List.tl times)
         (List.filteri (fun i _ -> i < List.length times - 1) times))
  in
  let n = Array.length gaps in
  let mean = Array.fold_left ( +. ) 0.0 gaps /. float_of_int n in
  let var =
    Array.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.0)) 0.0 gaps
    /. float_of_int n
  in
  let cov = ref 0.0 in
  for i = 0 to n - 2 do
    cov := !cov +. ((gaps.(i) -. mean) *. (gaps.(i + 1) -. mean))
  done;
  let rho = !cov /. float_of_int (n - 1) /. var in
  Alcotest.(check bool)
    (Printf.sprintf "lag-1 autocorrelation %.4f ~ 0" rho)
    true
    (Float.abs rho < 0.05)

(* --- Zipf popularity --------------------------------------------------- *)

(* Log-log regression of empirical frequency over the top ranks recovers
   the exponent: slope ~ -s.  Drawn directly from the sampler so the
   sample is large and the tolerance tight. *)
let test_zipf_exponent () =
  let n = 1000 and s_exp = 1.0 in
  let z = W.Zipf.create ~n ~s:s_exp in
  let rng = Rng.create ~seed:5 in
  let draws = 200_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = W.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) >= Array.fold_left max 0 counts);
  (* Least-squares slope of log(freq) on log(rank+1), top 50 ranks. *)
  let top = 50 in
  let xs = Array.init top (fun r -> log (float_of_int (r + 1))) in
  let ys = Array.init top (fun r -> log (float_of_int counts.(r))) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int top in
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to top - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) ** 2.0)
  done;
  let slope = !sxy /. !sxx in
  Alcotest.(check bool)
    (Printf.sprintf "zipf slope %.3f ~ -%.1f" slope s_exp)
    true
    (Float.abs (slope +. s_exp) < 0.1)

(* A steeper exponent must concentrate more mass on the head. *)
let test_zipf_exponent_ordering () =
  let head_share s =
    let z = W.Zipf.create ~n:500 ~s in
    let rng = Rng.create ~seed:6 in
    let hits = ref 0 and draws = 20_000 in
    for _ = 1 to draws do
      if W.Zipf.sample z rng < 10 then incr hits
    done;
    float_of_int !hits /. float_of_int draws
  in
  let flat = head_share 0.5 and steep = head_share 1.5 in
  Alcotest.(check bool)
    (Printf.sprintf "head share: s=1.5 %.2f > s=0.5 %.2f" steep flat)
    true
    (steep > flat +. 0.2)

(* --- Diurnal curve ----------------------------------------------------- *)

(* The rate multiplier must integrate to exactly one day over a day —
   amplitude shapes the curve without changing the daily budget. *)
let test_diurnal_integrates_to_budget () =
  List.iter
    (fun amp ->
      let s = { spec with W.diurnal_amplitude = amp } in
      let steps = 10_000 in
      let dt = s.W.day /. float_of_int steps in
      let integral = ref 0.0 in
      for i = 0 to steps - 1 do
        let t0 = float_of_int i *. dt in
        integral :=
          !integral
          +. (dt
             *. (W.diurnal_factor s t0 +. W.diurnal_factor s (t0 +. dt))
             /. 2.0)
      done;
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "amplitude %.1f integrates to day" amp)
        s.W.day !integral;
      (* And the factor is never negative (thinning probability). *)
      for i = 0 to 100 do
        let t = float_of_int i /. 100.0 *. s.W.day in
        Alcotest.(check bool) "factor >= 0" true (W.diurnal_factor s t >= 0.0)
      done)
    [ 0.0; 0.4; 0.9 ]

(* The realized schedule follows the curve: with a trough at t = 0 and
   the peak mid-day, the middle half-day of a one-day horizon must hold
   more arrivals than the two trough quarters. *)
let test_diurnal_shapes_arrivals () =
  let s =
    {
      spec with
      W.seed = 13;
      cities = 4;
      diurnal_amplitude = 0.8;
      rate_per_city = 1.0;
      horizon = spec.W.day;
    }
  in
  let arrivals = W.generate s in
  let quarter = s.W.day /. 4.0 in
  let mid, trough =
    List.fold_left
      (fun (m, t) (a : W.arrival) ->
        if a.W.at >= quarter && a.W.at < 3.0 *. quarter then (m + 1, t)
        else (m, t + 1))
      (0, 0) arrivals
  in
  Alcotest.(check bool)
    (Printf.sprintf "mid-day %d > troughs %d" mid trough)
    true
    (float_of_int mid > 1.3 *. float_of_int trough)

(* Realized totals track expected_flows (law of large numbers; 5%). *)
let test_expected_flows () =
  let s =
    { spec with W.seed = 14; cities = 8; rate_per_city = 1.0; horizon = 500.0 }
  in
  let n = List.length (W.generate s) in
  let expect = W.expected_flows s in
  Alcotest.(check bool)
    (Printf.sprintf "%d arrivals ~ %.0f expected" n expect)
    true
    (Float.abs (float_of_int n -. expect) < 0.05 *. expect)

(* --- Determinism & validation ------------------------------------------ *)

let test_seed_determinism () =
  let a = W.generate { spec with W.seed = 21 } in
  let b = W.generate { spec with W.seed = 21 } in
  let c = W.generate { spec with W.seed = 22 } in
  Alcotest.(check bool) "same seed identical" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c);
  (* Schedules are time-sorted with contiguous seqs, and every field is
     inside the spec's bounds. *)
  let rec sorted = function
    | (x : W.arrival) :: (y :: _ as rest) -> x.W.at <= y.W.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "time sorted" true (sorted a);
  List.iteri
    (fun i (x : W.arrival) ->
      Alcotest.(check int) "seq contiguous" i x.W.seq;
      Alcotest.(check bool) "city in range" true
        (x.W.city >= 0 && x.W.city < spec.W.cities);
      Alcotest.(check bool) "origin derived" true
        (x.W.origin = W.origin_of_content spec x.W.content);
      Alcotest.(check bool) "bytes bounded" true
        (x.W.bytes >= spec.W.min_bytes && x.W.bytes <= spec.W.max_bytes))
    a

let test_tcp_share () =
  let s =
    {
      spec with
      W.seed = 15;
      cities = 8;
      rate_per_city = 1.0;
      horizon = 500.0;
      tcp_share = 0.25;
    }
  in
  let arrivals = W.generate s in
  let tcp =
    List.length (List.filter (fun a -> a.W.protocol = W.Tcp) arrivals)
  in
  let share = float_of_int tcp /. float_of_int (List.length arrivals) in
  Alcotest.(check bool)
    (Printf.sprintf "tcp share %.3f ~ 0.25" share)
    true
    (Float.abs (share -. 0.25) < 0.05)

let test_scale_to () =
  let s = W.scale_to spec ~flows:2000 in
  Alcotest.(check (float 1e-6)) "expected_flows hits target" 2000.0
    (W.expected_flows s)

let test_validation () =
  let raises s =
    match W.generate s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "cities > catalogue rejected" true
    (raises { spec with W.cities = 10_000 });
  Alcotest.(check bool) "negative rate rejected" true
    (raises { spec with W.rate_per_city = -1.0 });
  Alcotest.(check bool) "amplitude >= 1 rejected" true
    (raises { spec with W.diurnal_amplitude = 1.0 });
  Alcotest.(check bool) "min > max bytes rejected" true
    (raises { spec with W.min_bytes = 10; max_bytes = 5 })

let () =
  Alcotest.run "leotp_workload"
    [
      ( "statistics",
        [
          Alcotest.test_case "poisson inter-arrivals" `Quick
            test_poisson_interarrivals;
          Alcotest.test_case "inter-arrival independence" `Quick
            test_interarrival_independence;
          Alcotest.test_case "zipf exponent" `Quick test_zipf_exponent;
          Alcotest.test_case "zipf ordering" `Quick test_zipf_exponent_ordering;
          Alcotest.test_case "diurnal budget" `Quick
            test_diurnal_integrates_to_budget;
          Alcotest.test_case "diurnal shape" `Quick test_diurnal_shapes_arrivals;
          Alcotest.test_case "expected flows" `Quick test_expected_flows;
          Alcotest.test_case "tcp share" `Quick test_tcp_share;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
          Alcotest.test_case "scale_to" `Quick test_scale_to;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
