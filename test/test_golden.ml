(* Golden regression over the paper-figure drivers: every
   [Experiments.fig*] runs in quick mode with the invariant checker
   attached ({!Leotp_scenario.Invariants.self_check}), so a violated
   protocol invariant fails the test, and each result is checked for
   structural sanity (non-empty rows, finite non-negative throughputs and
   delays, Jain index in [0, 1]).  Values are deliberately not pinned:
   the reproduction target is qualitative shape, not exact numbers. *)

module E = Leotp_scenario.Experiments

let finite x = Float.is_finite x

let check_nonneg what x =
  if not (finite x && x >= 0.0) then
    Alcotest.failf "%s: expected finite >= 0, got %g" what x

let check_rows what rows =
  if rows = [] then Alcotest.failf "%s: no result rows" what

let test_fig02 () =
  let r = E.fig02 ~quick:true () in
  check_rows "fig02" r;
  List.iter
    (fun (name, rows) ->
      check_rows ("fig02 " ^ name) rows;
      List.iter
        (fun (hops, thr) ->
          if hops < 1 then Alcotest.failf "fig02 %s: hops %d" name hops;
          check_nonneg (Printf.sprintf "fig02 %s@%d" name hops) thr)
        rows)
    r

let test_fig03 () =
  let r = E.fig03 () in
  check_rows "fig03" r;
  List.iter
    (fun (scheme, stats) ->
      check_rows ("fig03 " ^ scheme) stats;
      List.iter
        (fun (stat, v) -> check_nonneg (scheme ^ "/" ^ stat) v)
        stats)
    r

let test_fig04 () =
  let r = E.fig04 ~quick:true () in
  check_rows "fig04" r;
  List.iter
    (fun (proto, (thr, owd)) ->
      check_nonneg ("fig04 " ^ proto ^ " throughput") thr;
      check_nonneg ("fig04 " ^ proto ^ " owd") owd)
    r

let test_fig05 () =
  let r = E.fig05 ~quick:true () in
  check_rows "fig05" r;
  List.iter
    (fun (proto, rows) ->
      check_rows ("fig05 " ^ proto) rows;
      List.iter
        (fun (pd, queuing, drops) ->
          check_nonneg ("fig05 " ^ proto ^ " prop delay") pd;
          check_nonneg ("fig05 " ^ proto ^ " queuing") queuing;
          if drops < 0 then Alcotest.failf "fig05 %s: drops %d" proto drops)
        rows)
    r

let test_fig10 () =
  let r = E.fig10 ~quick:true () in
  check_rows "fig10" r;
  List.iter
    (fun (proto, rows) ->
      check_rows ("fig10 " ^ proto) rows;
      List.iter
        (fun (plr, mean, p99) ->
          check_nonneg ("fig10 " ^ proto ^ " plr") plr;
          check_nonneg ("fig10 " ^ proto ^ " mean retx owd") mean;
          check_nonneg ("fig10 " ^ proto ^ " p99 retx owd") p99)
        rows)
    r

let check_xy_series fig r =
  check_rows fig r;
  List.iter
    (fun (proto, rows) ->
      check_rows (fig ^ " " ^ proto) rows;
      List.iter
        (fun (x, y) ->
          check_nonneg (fig ^ " " ^ proto ^ " x") x;
          check_nonneg (fig ^ " " ^ proto ^ " y") y)
        rows)
    r

let test_fig11 () = check_xy_series "fig11" (E.fig11 ~quick:true ())
let test_fig12 () = check_xy_series "fig12" (E.fig12 ~quick:true ())
let test_fig13 () = check_xy_series "fig13" (E.fig13 ~quick:true ())

let test_fig14 () =
  let r = E.fig14 ~quick:true () in
  check_rows "fig14" r;
  List.iter
    (fun (label, (thr, queuing)) ->
      check_nonneg ("fig14 " ^ label ^ " throughput") thr;
      check_nonneg ("fig14 " ^ label ^ " queuing") queuing)
    r

let test_fig15 () =
  let r = E.fig15 ~quick:true () in
  check_rows "fig15" r;
  List.iter
    (fun (label, jain, per_flow) ->
      if not (finite jain && jain >= 0.0 && jain <= 1.0 +. 1e-9) then
        Alcotest.failf "fig15 %s: Jain index %g outside [0, 1]" label jain;
      check_rows ("fig15 " ^ label) per_flow;
      List.iter (check_nonneg ("fig15 " ^ label ^ " flow Mbps")) per_flow)
    r

let () =
  (* Every scenario in this binary runs with the five protocol invariants
     checked; a violation raises and fails the figure's test case. *)
  Atomic.set Leotp_scenario.Invariants.self_check true;
  Alcotest.run "leotp_golden"
    [
      ( "figures",
        [
          Alcotest.test_case "fig02" `Quick test_fig02;
          Alcotest.test_case "fig03" `Quick test_fig03;
          Alcotest.test_case "fig04" `Quick test_fig04;
          Alcotest.test_case "fig05" `Quick test_fig05;
          Alcotest.test_case "fig10" `Quick test_fig10;
          Alcotest.test_case "fig11" `Quick test_fig11;
          Alcotest.test_case "fig12" `Quick test_fig12;
          Alcotest.test_case "fig13" `Quick test_fig13;
          Alcotest.test_case "fig14" `Quick test_fig14;
          Alcotest.test_case "fig15" `Quick test_fig15;
        ] );
    ]
