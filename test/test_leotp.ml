(* Tests for the LEOTP core: wire format, cache, SHR (Algorithm 1 and the
   paper's Fig 8b example), hop congestion control, backpressure,
   send buffer, and full-protocol behaviour over simulated paths —
   including the end-to-end reliability property under random loss and
   link switching, and the ablation orderings of Table II. *)

module Engine = Leotp_sim.Engine
module Node = Leotp_net.Node
module Bandwidth = Leotp_net.Bandwidth
module Topology = Leotp_net.Topology
module Flow_metrics = Leotp_net.Flow_metrics
open Leotp

let mbps = Leotp_util.Units.mbps_to_bytes_per_sec
let config = Config.default

let setup () =
  Leotp_net.Packet.reset_ids ();
  Node.reset_ids ();
  (Engine.create (), Leotp_util.Rng.create ~seed:11)

(* ------------------------------------------------------------------ *)
(* Wire *)

let test_wire_sizes () =
  let i =
    Wire.interest_packet ~config ~src:1 ~dst:2 ~flow:1 ~lo:0 ~hi:1400
      ~timestamp:0.0 ~send_rate:1e6 ~retx:false
  in
  Alcotest.(check int) "interest = header" 15 i.Leotp_net.Packet.size;
  let d =
    Wire.data_packet ~config ~src:2 ~dst:1 ~flow:1 ~lo:0 ~hi:1400
      ~timestamp:0.0 ~req_owd:0.0 ~first_sent:0.0 ~retx:false
  in
  Alcotest.(check int) "data = header+payload" 1415 d.Leotp_net.Packet.size;
  let v = Wire.vph_packet ~config ~src:2 ~dst:1 ~flow:1 ~lo:0 ~hi:1400 ~timestamp:0.0 in
  Alcotest.(check int) "vph = header" 15 v.Leotp_net.Packet.size;
  Alcotest.(check bool) "vph flag" true (Wire.is_vph v);
  Alcotest.(check bool) "data not vph" false (Wire.is_vph d)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_roundtrip () =
  let c = Cache.create ~config () in
  Cache.insert c ~flow:1 ~lo:0 ~hi:1400 ~first_sent:1.0 ~retx:false;
  (match Cache.lookup c ~flow:1 ~lo:0 ~hi:1400 with
  | Some (fs, retx) ->
    Alcotest.(check (float 1e-9)) "first_sent kept" 1.0 fs;
    Alcotest.(check bool) "retx kept" false retx
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool)
    "miss on different flow" true
    (Cache.lookup c ~flow:2 ~lo:0 ~hi:1400 = None);
  Alcotest.(check bool)
    "miss on uncovered range" true
    (Cache.lookup c ~flow:1 ~lo:1400 ~hi:2800 = None);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 2 st.Cache.misses

let test_cache_cross_block () =
  let c = Cache.create ~config () in
  (* 4096-byte blocks: [3000, 6000) spans blocks 0 and 1. *)
  Cache.insert c ~flow:1 ~lo:3000 ~hi:6000 ~first_sent:2.0 ~retx:true;
  (match Cache.lookup c ~flow:1 ~lo:3000 ~hi:6000 with
  | Some (_, retx) -> Alcotest.(check bool) "retx carried" true retx
  | None -> Alcotest.fail "cross-block hit expected");
  Alcotest.(check bool)
    "sub-range hit" true
    (Cache.lookup c ~flow:1 ~lo:4000 ~hi:4200 <> None);
  Alcotest.(check bool)
    "partially covered misses" true
    (Cache.lookup c ~flow:1 ~lo:2999 ~hi:3001 = None)

let test_cache_eviction () =
  let small = { config with Config.cache_capacity = 10_000 } in
  let c = Cache.create ~config:small () in
  for i = 0 to 9 do
    Cache.insert c ~flow:1 ~lo:(i * 4096) ~hi:((i + 1) * 4096) ~first_sent:0.0
      ~retx:false
  done;
  Alcotest.(check bool)
    "capacity respected" true
    (Cache.used_bytes c <= 10_000);
  Alcotest.(check bool) "evictions counted" true ((Cache.stats c).Cache.evictions > 0);
  (* Oldest blocks evicted, newest survive. *)
  Alcotest.(check bool)
    "LRU keeps newest" true
    (Cache.lookup c ~flow:1 ~lo:(9 * 4096) ~hi:(10 * 4096) <> None);
  Alcotest.(check bool)
    "LRU evicts oldest" true
    (Cache.lookup c ~flow:1 ~lo:0 ~hi:4096 = None)

let test_cache_drop_flow () =
  let c = Cache.create ~config () in
  Cache.insert c ~flow:1 ~lo:0 ~hi:1400 ~first_sent:0.0 ~retx:false;
  Cache.insert c ~flow:2 ~lo:0 ~hi:1400 ~first_sent:0.0 ~retx:false;
  Cache.drop_flow c ~flow:1;
  Alcotest.(check bool) "flow 1 gone" true (Cache.lookup c ~flow:1 ~lo:0 ~hi:1400 = None);
  Alcotest.(check bool) "flow 2 kept" true (Cache.lookup c ~flow:2 ~lo:0 ~hi:1400 <> None)

let cache_model_prop =
  let open QCheck2 in
  Test.make ~name:"cache lookup consistent with inserted ranges" ~count:100
    Gen.(list_size (int_range 1 30) (pair (int_range 0 20) (int_range 1 8)))
    (fun inserts ->
      let c = Cache.create ~config () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (block, len) ->
          let lo = block * 1000 and hi = (block * 1000) + (len * 100) in
          Cache.insert c ~flow:1 ~lo ~hi ~first_sent:0.0 ~retx:false;
          for b = lo to hi - 1 do
            Hashtbl.replace model b ()
          done)
        inserts;
      (* No eviction at this size: containment must match the model. *)
      List.for_all
        (fun (block, len) ->
          let lo = block * 1000 and hi = (block * 1000) + (len * 100) in
          Cache.contains c ~flow:1 ~lo ~hi
          &&
          let missing = lo = hi in
          not missing)
        inserts)

(* ------------------------------------------------------------------ *)
(* SHR: Algorithm 1 *)

let mss = config.Config.mss

let test_shr_in_sequence () =
  let shr = Shr.create ~config in
  let a1 = Shr.on_packet shr ~lo:0 ~hi:mss in
  Alcotest.(check bool) "no holes" true (a1.Shr.new_holes = [] && a1.Shr.expired_holes = []);
  let a2 = Shr.on_packet shr ~lo:mss ~hi:(2 * mss) in
  Alcotest.(check bool) "still none" true (a2.Shr.new_holes = []);
  Alcotest.(check int) "lastByte" (2 * mss) (Shr.last_byte shr)

let test_shr_fig8b () =
  (* The paper's Fig 8b walk-through: packets 1..5, packet 2 lost.
     N = 3 (default): receipt of 3 detects the hole; packets 4, 5 and one
     more skip it; after count > N an Interest is issued. *)
  let shr = Shr.create ~config in
  let p n = (n * mss, (n + 1) * mss) in
  ignore (Shr.on_packet shr ~lo:(fst (p 0)) ~hi:(snd (p 0)));
  (* packet 2 (index 1) lost; packet 3 (index 2) arrives. *)
  let a3 = Shr.on_packet shr ~lo:(fst (p 2)) ~hi:(snd (p 2)) in
  Alcotest.(check (list (pair int int)))
    "hole detected -> VPH range"
    [ (mss, 2 * mss) ]
    a3.Shr.new_holes;
  Alcotest.(check bool) "not yet expired" true (a3.Shr.expired_holes = []);
  let a4 = Shr.on_packet shr ~lo:(fst (p 3)) ~hi:(snd (p 3)) in
  Alcotest.(check bool) "count 1" true (a4.Shr.expired_holes = []);
  let a5 = Shr.on_packet shr ~lo:(fst (p 4)) ~hi:(snd (p 4)) in
  Alcotest.(check bool) "count 2" true (a5.Shr.expired_holes = []);
  let a6 = Shr.on_packet shr ~lo:(fst (p 5)) ~hi:(snd (p 5)) in
  Alcotest.(check bool) "count 3" true (a6.Shr.expired_holes = []);
  let a7 = Shr.on_packet shr ~lo:(fst (p 6)) ~hi:(snd (p 6)) in
  Alcotest.(check (list (pair int int)))
    "count > N: retransmission Interest"
    [ (mss, 2 * mss) ]
    a7.Shr.expired_holes;
  Alcotest.(check bool) "hole dropped after request" true (Shr.pending_holes shr = [])

let test_shr_retransmission_fills_hole () =
  let shr = Shr.create ~config in
  ignore (Shr.on_packet shr ~lo:0 ~hi:mss);
  ignore (Shr.on_packet shr ~lo:(2 * mss) ~hi:(3 * mss));
  Alcotest.(check int) "one hole" 1 (List.length (Shr.pending_holes shr));
  (* The lost packet arrives late (case 3: rs < lastByte). *)
  let a = Shr.on_packet shr ~lo:mss ~hi:(2 * mss) in
  Alcotest.(check bool) "no new holes" true (a.Shr.new_holes = []);
  Alcotest.(check bool) "hole deleted" true (Shr.pending_holes shr = [])

let test_shr_partial_fill_splits () =
  let shr = Shr.create ~config in
  ignore (Shr.on_packet shr ~lo:0 ~hi:100);
  ignore (Shr.on_packet shr ~lo:400 ~hi:500);
  (* hole [100,400); fill [200,300) -> holes [100,200) and [300,400). *)
  ignore (Shr.on_packet shr ~lo:200 ~hi:300);
  Alcotest.(check (list (pair int int)))
    "split"
    [ (100, 200); (300, 400) ]
    (List.map (fun (lo, hi, _) -> (lo, hi)) (Shr.pending_holes shr))

let test_shr_vph_suppression () =
  (* A downstream node that processes a VPH for the hole range must not
     detect the hole itself: feeding the VPH through on_packet covers the
     sequence space. *)
  let shr = Shr.create ~config in
  ignore (Shr.on_packet shr ~lo:0 ~hi:mss);
  (* VPH for [mss, 2*mss) arrives before packet 3. *)
  ignore (Shr.on_packet shr ~lo:mss ~hi:(2 * mss));
  let a = Shr.on_packet shr ~lo:(2 * mss) ~hi:(3 * mss) in
  Alcotest.(check bool) "no hole seen downstream" true (a.Shr.new_holes = []);
  Alcotest.(check bool) "no pending holes" true (Shr.pending_holes shr = [])

let shr_no_false_loss_prop =
  let open QCheck2 in
  Test.make ~name:"SHR never requests data that arrived" ~count:200
    Gen.(list_size (int_range 1 40) (int_range 0 19))
    (fun order ->
      (* Deliver packets in an arbitrary order (with duplicates); collect
         every retransmission request; each requested range must be one
         that had genuinely not arrived before its request. *)
      let shr = Shr.create ~config in
      let arrived = Array.make 20 false in
      List.for_all
        (fun idx ->
          let lo = idx * mss and hi = (idx + 1) * mss in
          let acts = Shr.on_packet shr ~lo ~hi in
          arrived.(idx) <- true;
          List.for_all
            (fun (rlo, rhi) ->
              (* every mss-slot in the requested hole is un-arrived *)
              let ok = ref true in
              let s = ref rlo in
              while !s < rhi do
                if arrived.(!s / mss) then ok := false;
                s := !s + mss
              done;
              !ok)
            acts.Shr.expired_holes)
        order)

(* ------------------------------------------------------------------ *)
(* Hop CC and backpressure *)

let feed_cc cc ~n ~rtt ~bytes ~start =
  for i = 1 to n do
    Hop_cc.on_data cc
      ~now:(start +. (rtt *. float_of_int i))
      ~interest_owd:(rtt /. 2.0) ~data_owd:(rtt /. 2.0) ~bytes
  done

let test_hop_cc_slow_start_growth () =
  let cc = Hop_cc.create ~config ~now:0.0 () in
  let w0 = Hop_cc.cwnd cc in
  feed_cc cc ~n:5 ~rtt:0.02 ~bytes:14000 ~start:0.0;
  Alcotest.(check bool) "doubling" true (Hop_cc.cwnd cc > 4.0 *. w0)

let test_hop_cc_congestion_cut () =
  let cc = Hop_cc.create ~config ~now:0.0 () in
  (* Converge at 1 MB/s, 20 ms. *)
  feed_cc cc ~n:100 ~rtt:0.02 ~bytes:20_000 ~start:0.0;
  let w = Hop_cc.cwnd cc in
  (* Now inflate the RTT: queue estimate exceeds M and cwnd drops to
     k*BDP. *)
  for i = 1 to 60 do
    Hop_cc.on_data cc
      ~now:(2.0 +. (0.08 *. float_of_int i))
      ~interest_owd:0.04 ~data_owd:0.04 ~bytes:60_000
  done;
  Alcotest.(check bool)
    (Printf.sprintf "cut (%.0f -> %.0f)" w (Hop_cc.cwnd cc))
    true
    (Hop_cc.cwnd cc < w);
  Alcotest.(check bool) "left slow start" true (not (Hop_cc.in_slow_start cc))

let test_hop_cc_queue_estimate () =
  let cc = Hop_cc.create ~config ~now:0.0 () in
  feed_cc cc ~n:50 ~rtt:0.02 ~bytes:20_000 ~start:0.0;
  (* ~1 MB/s at baseline 20 ms: no queue. *)
  Alcotest.(check bool) "no queue at baseline" true (Hop_cc.queue_len cc ~now:1.0 < 10_000.0);
  ignore (Hop_cc.hop_rtt cc)

let test_backpressure_signs () =
  let cc = Hop_cc.create ~config ~now:0.0 () in
  feed_cc cc ~n:50 ~rtt:0.02 ~bytes:20_000 ~start:0.0;
  let empty =
    Backpressure.advertised_rate ~config ~cc ~now:1.0 ~buffer_len:0
      ~next_hop_rate:1_000_000.0
  in
  let full =
    Backpressure.advertised_rate ~config ~cc ~now:1.0
      ~buffer_len:(10 * config.Config.bl_target)
      ~next_hop_rate:1_000_000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "backlog lowers the advertised rate (%.0f < %.0f)" full empty)
    true (full < empty);
  Alcotest.(check bool) "never negative" true (full >= 0.0)

let test_backpressure_formula () =
  (* Direct check of eq (9) with the draining sign. *)
  let r =
    Backpressure.rate_bp ~config ~buffer_len:config.Config.bl_target
      ~next_hop_rate:500_000.0 ~hop_rtt:0.02
  in
  Alcotest.(check (float 1e-6)) "at target: rate = next hop rate" 500_000.0 r;
  let low =
    Backpressure.rate_bp ~config ~buffer_len:(2 * config.Config.bl_target)
      ~next_hop_rate:500_000.0 ~hop_rtt:0.02
  in
  (* 500 KB/s - 40 KB / 20 ms would be negative: clamped to a full stop. *)
  Alcotest.(check (float 1e-6)) "above target: clamped drain" 0.0 low;
  let mild =
    Backpressure.rate_bp ~config
      ~buffer_len:(config.Config.bl_target + 4_000)
      ~next_hop_rate:500_000.0 ~hop_rtt:0.02
  in
  Alcotest.(check (float 1e-6))
    "slightly above target: drain the excess"
    (500_000.0 -. (4_000.0 /. 0.02))
    mild

(* ------------------------------------------------------------------ *)
(* Send buffer *)

let test_send_buffer_rate_limit () =
  let engine = Engine.create () in
  let sent = ref [] in
  let sb =
    Send_buffer.create engine ~config
      ~send:(fun pkt -> sent := (Engine.now engine, pkt) :: !sent)
      ()
  in
  Send_buffer.set_rate sb 14_150.0;
  (* 10 packets of 1415 B at 14150 B/s: ~1 per 100 ms after the burst. *)
  for i = 0 to 9 do
    ignore
      (Send_buffer.push sb
         (Wire.data_packet ~config ~src:1 ~dst:2 ~flow:1 ~lo:(i * 1400)
            ~hi:((i + 1) * 1400) ~timestamp:0.0 ~req_owd:0.0 ~first_sent:0.0
            ~retx:false))
  done;
  Engine.run engine;
  Alcotest.(check int) "all sent" 10 (List.length !sent);
  let t_last = match !sent with (ts, _) :: _ -> ts | [] -> 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "paced over ~0.8s+ (%.2f)" t_last)
    true (t_last > 0.7)

let test_send_buffer_dedup () =
  let engine = Engine.create () in
  let sent = ref 0 in
  let sb = Send_buffer.create engine ~config ~send:(fun _ -> incr sent) () in
  let pkt lo =
    Wire.data_packet ~config ~src:1 ~dst:2 ~flow:1 ~lo ~hi:(lo + 1400)
      ~timestamp:0.0 ~req_owd:0.0 ~first_sent:0.0 ~retx:false
  in
  (* Drain the initial token burst so subsequent pushes stay queued. *)
  ignore (Send_buffer.push sb (pkt 100_000));
  Send_buffer.set_rate sb 1_000.0;
  Alcotest.(check bool) "first accepted" true (Send_buffer.push sb (pkt 0));
  Alcotest.(check bool) "dup absorbed" true (Send_buffer.push sb (pkt 0));
  Engine.run ~until:5.0 engine;
  Alcotest.(check int) "sent once (plus the flushing packet)" 2 !sent

let test_send_buffer_overflow () =
  let engine = Engine.create () in
  let small = { config with Config.send_buffer_capacity = 3000 } in
  let sb = Send_buffer.create engine ~config:small ~send:(fun _ -> ()) () in
  Send_buffer.set_rate sb 1.0;
  let push i =
    Send_buffer.push sb
      (Wire.data_packet ~config:small ~src:1 ~dst:2 ~flow:1 ~lo:(i * 1400)
         ~hi:((i + 1) * 1400) ~timestamp:0.0 ~req_owd:0.0 ~first_sent:0.0
         ~retx:false)
  in
  (* The initial token burst lets the first packet leave immediately;
     after that the queue holds two packets (2830 <= 3000) and the next
     push overflows. *)
  ignore (push 0);
  ignore (push 1);
  ignore (push 2);
  Alcotest.(check bool) "fourth dropped" false (push 3);
  Alcotest.(check int) "drop counted" 1 (Send_buffer.drops sb)

(* ------------------------------------------------------------------ *)
(* Full protocol over a chain *)

let run_leotp ?(hops = 5) ?(bw_mbps = 20.0) ?(delay = 0.01) ?(plr = 0.0)
    ?(bytes = 1_000_000) ?(cfg = config) ?(coverage = 1.0) ?(until = 120.0) ()
    =
  let engine, rng = setup () in
  let spec =
    Topology.hop ~plr ~bandwidth:(Bandwidth.Constant (mbps bw_mbps)) ~delay ()
  in
  let chain = Topology.chain engine ~rng (Array.make hops spec) in
  let session =
    Session.over_chain engine ~config:cfg ~chain ~flow:1 ~total_bytes:bytes
      ~coverage ()
  in
  Session.start session;
  Engine.run ~until engine;
  (session, chain, engine)

let test_transfer_completes () =
  let session, _, _ = run_leotp () in
  Alcotest.(check bool) "complete" true (Consumer.complete session.Session.consumer);
  Alcotest.(check int)
    "delivered" 1_000_000
    (Flow_metrics.app_bytes session.Session.metrics)

let test_transfer_under_loss () =
  let session, _, _ = run_leotp ~plr:0.01 () in
  Alcotest.(check bool) "complete with 1%/hop" true
    (Consumer.complete session.Session.consumer);
  Alcotest.(check int)
    "every byte exactly once" 1_000_000
    (Flow_metrics.app_bytes session.Session.metrics)

let test_in_network_retransmission_active () =
  let session, _, _ = run_leotp ~plr:0.02 ~bytes:2_000_000 () in
  let shr_total =
    List.fold_left
      (fun acc m ->
        match Midnode.flow_stats m ~flow:1 with
        | Some fs -> acc + fs.Midnode.shr_interests
        | None -> acc)
      0 session.Session.midnodes
  in
  let vph_total =
    List.fold_left
      (fun acc m ->
        match Midnode.flow_stats m ~flow:1 with
        | Some fs -> acc + fs.Midnode.vph_sent
        | None -> acc)
      0 session.Session.midnodes
  in
  let hits =
    List.fold_left
      (fun acc m -> acc + (Cache.stats (Midnode.cache m)).Cache.hits)
      0 session.Session.midnodes
  in
  Alcotest.(check bool) "SHR interests issued" true (shr_total > 0);
  Alcotest.(check bool) "VPH notifications sent" true (vph_total > 0);
  Alcotest.(check bool) "cache hits served repairs" true (hits > 0)

let test_owd_floor () =
  let session, _, _ = run_leotp ~bytes:500_000 () in
  (* 5 hops x 10 ms propagation. *)
  Alcotest.(check bool)
    "OWD >= one-way propagation" true
    (Leotp_util.Stats.min (Flow_metrics.owd session.Session.metrics) >= 0.05)

let test_e2e_mode_no_midnodes () =
  let cfg = Config.with_ablation Config.No_midnodes config in
  let session, _, _ = run_leotp ~cfg ~bytes:500_000 ~plr:0.01 () in
  Alcotest.(check bool) "TR alone still reliable" true
    (Consumer.complete session.Session.consumer);
  Alcotest.(check (list int))
    "no midnodes" []
    (List.map (fun _ -> 0) session.Session.midnodes)

let test_ablation_throughput_order () =
  (* Table II: A (full) should beat D (no midnodes) in throughput under
     loss on a long path. *)
  let time cfg =
    let session, _, _ =
      run_leotp ~cfg ~hops:6 ~plr:0.01 ~bytes:2_000_000 ~until:300.0 ()
    in
    match Flow_metrics.completion_time session.Session.metrics with
    | Some ct -> ct
    | None -> 300.0
  in
  let t_full = time config in
  let t_none = time (Config.with_ablation Config.No_midnodes config) in
  Alcotest.(check bool)
    (Printf.sprintf "full %.1fs faster than none %.1fs" t_full t_none)
    true (t_full < t_none)

let test_partial_coverage_still_works () =
  let session, _, _ =
    run_leotp ~hops:8 ~coverage:0.25 ~plr:0.01 ~bytes:1_000_000 ~until:300.0 ()
  in
  Alcotest.(check bool) "complete at 25% coverage" true
    (Consumer.complete session.Session.consumer);
  Alcotest.(check int) "two midnodes placed" 2
    (List.length session.Session.midnodes)

let test_dedup_no_duplicate_delivery () =
  (* Aggressive loss forces many retransmissions; the application must
     still see each byte exactly once. *)
  let session, _, _ =
    run_leotp ~hops:3 ~plr:0.05 ~bytes:300_000 ~until:300.0 ()
  in
  Alcotest.(check bool) "complete" true (Consumer.complete session.Session.consumer);
  Alcotest.(check int) "exact bytes" 300_000
    (Flow_metrics.app_bytes session.Session.metrics)

(* End-to-end reliability property: random loss rates, hop counts,
   coverage and ablations — the transfer must complete exactly. *)
let reliability_prop =
  let open QCheck2 in
  Test.make ~name:"LEOTP delivers the exact byte stream" ~count:12
    Gen.(
      quad (int_range 1 5) (float_range 0.0 0.03)
        (oneofl [ 1.0; 0.5 ])
        (oneofl [ Config.Full; Config.No_cache; Config.E2e_cc; Config.No_midnodes ]))
    (fun (hops, plr, coverage, ablation) ->
      let cfg = Config.with_ablation ablation config in
      let bytes = 200_000 in
      let session, _, _ =
        run_leotp ~hops ~plr ~coverage ~cfg ~bytes ~until:600.0 ()
      in
      Consumer.complete session.Session.consumer
      && Flow_metrics.app_bytes session.Session.metrics = bytes)

let test_reliability_under_link_switching () =
  let engine, rng = setup () in
  let mk d = { Leotp_net.Dynamic_path.delay = d; bandwidth = Bandwidth.Constant (mbps 20.0); plr = 0.005 } in
  let dp =
    Leotp_net.Dynamic_path.create engine ~rng ~max_hops:4
      ~initial:[| mk 0.01; mk 0.01; mk 0.01; mk 0.01 |]
      ()
  in
  (* Alternate hop delays every second: in-flight packets drop. *)
  let rec reconfig i =
    if i < 60 then begin
      let d = if i mod 2 = 0 then 0.012 else 0.01 in
      ignore
        (Engine.schedule_at engine ~time:(float_of_int i) (fun () ->
             Leotp_net.Dynamic_path.apply dp [| mk d; mk d; mk d; mk d |]));
      reconfig (i + 1)
    end
  in
  reconfig 1;
  let session =
    Session.over_chain engine ~config
      ~chain:(Leotp_net.Dynamic_path.chain dp)
      ~flow:1 ~total_bytes:1_000_000 ()
  in
  Session.start session;
  Engine.run ~until:600.0 engine;
  Alcotest.(check bool) "complete across switches" true
    (Consumer.complete session.Session.consumer);
  Alcotest.(check bool) "switches happened" true
    (Leotp_net.Dynamic_path.switch_count dp > 10)

let test_throughput_loss_insensitive () =
  (* Fig 12's shape: going 0 -> 1% per-hop loss costs LEOTP only a few
     percent (vs ~halving for loss-based TCP). *)
  let tput plr =
    let engine, rng = setup () in
    let spec =
      Topology.hop ~plr ~bandwidth:(Bandwidth.Constant (mbps 20.0)) ~delay:0.01 ()
    in
    let chain = Topology.chain engine ~rng (Array.make 5 spec) in
    let session = Session.over_chain engine ~config ~chain ~flow:1 () in
    Session.start session;
    Engine.run ~until:60.0 engine;
    Flow_metrics.goodput session.Session.metrics ~lo:20.0 ~hi:60.0
  in
  let clean = tput 0.0 and lossy = tput 0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "lossy %.0f >= 0.8 x clean %.0f" lossy clean)
    true
    (lossy >= 0.8 *. clean)

(* Invariants of the hop controller under arbitrary sample streams. *)
let hop_cc_invariants_prop =
  let open QCheck2 in
  Test.make ~name:"hop_cc: cwnd floor, rate bounded, queue >= 0" ~count:100
    Gen.(
      list_size (int_range 1 120)
        (triple (float_range 0.001 0.2) (float_range 0.001 0.3) (int_range 0 30_000)))
    (fun samples ->
      let cc = Hop_cc.create ~config ~now:0.0 () in
      let now = ref 0.0 in
      List.for_all
        (fun (i_owd, d_owd, bytes) ->
          now := !now +. 0.01;
          Hop_cc.on_data cc ~now:!now ~interest_owd:i_owd ~data_owd:d_owd ~bytes;
          Hop_cc.cwnd cc >= 2.0 *. float_of_int config.Config.mss
          && Hop_cc.rate cc ~now:!now >= 0.0
          && Hop_cc.queue_len cc ~now:!now >= 0.0)
        samples)

let backpressure_monotone_prop =
  let open QCheck2 in
  Test.make ~name:"rate_bp decreases in buffer length" ~count:100
    Gen.(
      triple (int_range 0 500_000) (int_range 0 500_000)
        (pair (float_range 1000.0 5e6) (float_range 0.002 0.3)))
    (fun (bl1, bl2, (next_rate, rtt)) ->
      let r b =
        Backpressure.rate_bp ~config ~buffer_len:b ~next_hop_rate:next_rate
          ~hop_rtt:rtt
      in
      let lo = min bl1 bl2 and hi = max bl1 bl2 in
      r hi <= r lo +. 1e-6 && r hi >= 0.0)

let test_outage_recovery () =
  (* Failure injection: the path blacks out completely (100% loss on one
     hop) for 2 s mid-transfer; the flow must recover and complete. *)
  let engine, rng = setup () in
  let spec =
    Topology.hop ~bandwidth:(Bandwidth.Constant (mbps 20.0)) ~delay:0.01 ()
  in
  let chain = Topology.chain engine ~rng (Array.make 4 spec) in
  let session =
    Session.over_chain engine ~config ~chain ~flow:1 ~total_bytes:2_000_000 ()
  in
  Session.start session;
  let mid = chain.Topology.hops.(2) in
  ignore
    (Engine.schedule engine ~after:0.5 (fun () ->
         Leotp_net.Link.set_plr mid.Topology.fwd 1.0;
         Leotp_net.Link.set_plr mid.Topology.rev 1.0));
  ignore
    (Engine.schedule engine ~after:2.5 (fun () ->
         Leotp_net.Link.set_plr mid.Topology.fwd 0.0;
         Leotp_net.Link.set_plr mid.Topology.rev 0.0));
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "recovers from a 2 s blackout" true
    (Consumer.complete session.Session.consumer);
  Alcotest.(check int) "exact bytes" 2_000_000
    (Flow_metrics.app_bytes session.Session.metrics)

let test_monte_carlo_matches_analytic () =
  (* Independent simulation of the paper's Fig 3 numbers. *)
  let mc scheme =
    Leotp_theory.Retrans.Owd_dist.monte_carlo ~scheme ~p:0.005 ~hops:10
      ~d:0.01 ~packets:100_000 ~seed:9
  in
  let e2e = mc `E2e and hbh = mc `Hbh in
  Alcotest.(check (float 1e-6)) "e2e p99 = 300ms" 0.3
    (Leotp_util.Stats.percentile e2e 99.0);
  Alcotest.(check (float 1e-6)) "hbh p99 = 120ms" 0.12
    (Leotp_util.Stats.percentile hbh 99.0);
  (* "the maximum OWD are 300ms and 700ms respectively" over 100k pkts. *)
  Alcotest.(check bool) "e2e max ~700ms" true
    (Leotp_util.Stats.max e2e >= 0.5 && Leotp_util.Stats.max e2e <= 0.9);
  Alcotest.(check bool) "hbh max ~160ms" true
    (Leotp_util.Stats.max hbh >= 0.14 && Leotp_util.Stats.max hbh <= 0.2)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp"
    [
      ("wire", [ Alcotest.test_case "sizes" `Quick test_wire_sizes ]);
      ( "cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "cross-block" `Quick test_cache_cross_block;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "drop flow" `Quick test_cache_drop_flow;
          qc cache_model_prop;
        ] );
      ( "shr",
        [
          Alcotest.test_case "in sequence" `Quick test_shr_in_sequence;
          Alcotest.test_case "Fig 8b walk-through" `Quick test_shr_fig8b;
          Alcotest.test_case "late fill" `Quick test_shr_retransmission_fills_hole;
          Alcotest.test_case "partial fill splits" `Quick test_shr_partial_fill_splits;
          Alcotest.test_case "VPH suppression" `Quick test_shr_vph_suppression;
          qc shr_no_false_loss_prop;
        ] );
      ( "hop_cc",
        [
          Alcotest.test_case "slow start" `Quick test_hop_cc_slow_start_growth;
          Alcotest.test_case "congestion cut" `Quick test_hop_cc_congestion_cut;
          Alcotest.test_case "queue estimate" `Quick test_hop_cc_queue_estimate;
          Alcotest.test_case "backpressure direction" `Quick test_backpressure_signs;
          Alcotest.test_case "eq (9)" `Quick test_backpressure_formula;
          qc hop_cc_invariants_prop;
          qc backpressure_monotone_prop;
        ] );
      ( "send_buffer",
        [
          Alcotest.test_case "rate limit" `Quick test_send_buffer_rate_limit;
          Alcotest.test_case "dedup" `Quick test_send_buffer_dedup;
          Alcotest.test_case "overflow" `Quick test_send_buffer_overflow;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "transfer completes" `Quick test_transfer_completes;
          Alcotest.test_case "reliable under loss" `Quick test_transfer_under_loss;
          Alcotest.test_case "in-network retx active" `Quick
            test_in_network_retransmission_active;
          Alcotest.test_case "owd floor" `Quick test_owd_floor;
          Alcotest.test_case "ablation D works" `Quick test_e2e_mode_no_midnodes;
          Alcotest.test_case "A beats D" `Slow test_ablation_throughput_order;
          Alcotest.test_case "partial coverage" `Quick test_partial_coverage_still_works;
          Alcotest.test_case "no duplicate delivery" `Quick
            test_dedup_no_duplicate_delivery;
          Alcotest.test_case "link switching" `Quick
            test_reliability_under_link_switching;
          Alcotest.test_case "blackout recovery" `Quick test_outage_recovery;
          Alcotest.test_case "Monte Carlo vs analytic (Fig 3)" `Quick
            test_monte_carlo_matches_analytic;
          Alcotest.test_case "loss insensitivity" `Slow
            test_throughput_loss_insensitive;
          qc reliability_prop;
        ] );
    ]
