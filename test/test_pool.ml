(* QCheck properties for the zero-allocation packet layer: round-trips
   for every cursor codec (both wire modules), and the pool-recycling
   contract (acquire-after-release never shows stale fields; debug
   poisoning catches a planted use-after-release). *)

module Packet = Leotp_net.Packet
module Pool = Leotp_net.Packet_pool
module Lwire = Leotp.Wire
module Twire = Leotp_tcp.Wire

let fbits = Int64.bits_of_float

(* Compare by bit pattern so NaN and -0.0 count as exact round-trips. *)
let float_eq a b = Int64.equal (fbits a) (fbits b)

(* ------------------------------------------------------------------ *)
(* Generators.  Byte positions exercise boundaries (0, 1, max_int);
   floats include 0.0, -0.0, nan and t=0.0-adjacent values. *)

open QCheck2

let pos_gen =
  Gen.frequency
    [
      (6, Gen.int_bound 1_000_000_000);
      (1, Gen.oneofl [ 0; 1; max_int; max_int - 1 ]);
    ]

let float_gen =
  Gen.frequency
    [
      (6, Gen.float_bound_inclusive 1e6);
      (1, Gen.oneofl [ 0.0; -0.0; Float.nan; Float.min_float; 1e-300 ]);
    ]

let node_gen = Gen.int_bound 10_000
let flow_gen = Gen.int_bound 1_000

(* Encode [p] with [encode]/[size], decode into a fresh pool record, and
   hand both to [check]; releases both packets afterwards. *)
let round_trip ~size ~encode ~decode p check =
  let buf = Bytes.create size in
  encode (Leotp_net.Codec.writer buf) p;
  let q = Pool.acquire ~src:0 ~dst:0 ~flow:0 ~size:1 ~kind:Packet.kind_raw in
  decode (Leotp_net.Codec.reader buf) q;
  let ok = check p q in
  Pool.release p;
  Pool.release q;
  ok

let header_eq (p : Packet.t) (q : Packet.t) =
  p.Packet.kind = q.Packet.kind
  && p.Packet.src = q.Packet.src
  && p.Packet.dst = q.Packet.dst
  && p.Packet.flow = q.Packet.flow
  && p.Packet.size = q.Packet.size

(* ------------------------------------------------------------------ *)
(* LEOTP codecs: Interest and Data (VPH = Data with length 0).          *)

let config = Leotp.Config.default

let interest_round_trip =
  Test.make ~name:"interest codec round-trips" ~count:500
    Gen.(
      tup4 (pair node_gen node_gen) (pair flow_gen pos_gen)
        (pair float_gen float_gen) bool)
  @@ fun ((src, dst), (flow, lo), (ts, rate), retx) ->
  let hi = lo + 1400 in
  let p =
    Lwire.interest_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp:ts
      ~send_rate:rate ~retx
  in
  round_trip ~size:Lwire.interest_encoded_size ~encode:Lwire.encode_interest
    ~decode:Lwire.decode_interest p (fun p q ->
      header_eq p q
      && Lwire.is_interest q
      && Lwire.lo q = lo && Lwire.hi q = hi
      && float_eq (Lwire.timestamp q) ts
      && float_eq (Lwire.send_rate q) rate
      && Lwire.retx q = retx)

let data_round_trip =
  Test.make ~name:"data codec round-trips (incl. VPH length=0)" ~count:500
    Gen.(
      tup5 (pair node_gen node_gen) (pair flow_gen pos_gen)
        (triple float_gen float_gen float_gen)
        bool
        (* vph: encode a zero-length virtual packet header *)
        bool)
  @@ fun ((src, dst), (flow, lo), (ts, owd, first), retx, vph) ->
  let hi = if vph then lo else lo + 1400 in
  let p =
    if vph then Lwire.vph_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp:ts
    else
      Lwire.data_packet ~config ~src ~dst ~flow ~lo ~hi ~timestamp:ts
        ~req_owd:owd ~first_sent:first ~retx
  in
  round_trip ~size:Lwire.data_encoded_size ~encode:Lwire.encode_data
    ~decode:Lwire.decode_data p (fun p q ->
      header_eq p q
      && Lwire.is_data q
      && Lwire.lo q = lo && Lwire.hi q = hi
      && Lwire.length q = (if vph then 0 else hi - lo)
      && Lwire.is_vph q = vph
      && float_eq (Lwire.timestamp q) ts
      && (vph || (float_eq (Lwire.req_owd q) owd && Lwire.retx q = retx)))

(* ------------------------------------------------------------------ *)
(* TCP codecs: Data_seg (retx/fin flag byte) and Ack_seg (0..3 SACK     *)
(* slots, ts_echo presence flag — t=0.0 must survive as a valid echo).  *)

let data_seg_round_trip =
  Test.make ~name:"data_seg codec round-trips (retx/fin flags)" ~count:500
    Gen.(
      tup5 (pair node_gen node_gen) (pair flow_gen pos_gen)
        (pair float_gen float_gen) bool bool)
  @@ fun ((src, dst), (flow, seq), (sent, first), retx, fin) ->
  let p =
    Twire.data_packet ~src ~dst ~flow ~seq ~len:1400 ~sent_at:sent
      ~first_sent:first ~retx ~fin
  in
  round_trip ~size:Twire.data_seg_encoded_size ~encode:Twire.encode_data_seg
    ~decode:Twire.decode_data_seg p (fun p q ->
      header_eq p q
      && Twire.is_data_seg q
      && Twire.seq q = seq && Twire.len q = 1400
      && float_eq (Twire.sent_at q) sent
      && float_eq (Twire.first_sent q) first
      && Twire.retx q = retx && Twire.fin q = fin)

let ack_seg_round_trip =
  Test.make ~name:"ack_seg codec round-trips (sacks, ts_echo incl. 0.0)"
    ~count:500
    Gen.(
      tup4 (pair node_gen node_gen) (pair flow_gen pos_gen)
        (list_size (int_bound 3) (pair pos_gen (int_range 1 100_000)))
        (option (oneof [ float_gen; pure 0.0 ])))
  @@ fun ((src, dst), (flow, cum), sacks, ts_echo) ->
  let p = Twire.ack_packet ~src ~dst ~flow ~cum_ack:cum in
  List.iter (fun (lo, len) -> Twire.add_sack p ~lo ~hi:(lo + len)) sacks;
  (match ts_echo with Some t -> Twire.set_ts_echo p t | None -> ());
  round_trip ~size:Twire.ack_seg_encoded_size ~encode:Twire.encode_ack_seg
    ~decode:Twire.decode_ack_seg p (fun p q ->
      header_eq p q
      && Twire.is_ack_seg q
      && Twire.cum_ack q = cum
      && Twire.sack_count q = List.length sacks
      && List.for_all2
           (fun (lo, len) i ->
             Twire.sack_lo q i = lo && Twire.sack_hi q i = lo + len)
           sacks
           (List.init (List.length sacks) Fun.id)
      && Twire.has_ts_echo q = Option.is_some ts_echo
      && match ts_echo with
         | Some t -> float_eq (Twire.ts_echo q) t
         | None -> true)

(* ------------------------------------------------------------------ *)
(* Pool recycling.                                                      *)

let scribble (p : Packet.t) =
  p.Packet.i0 <- 111; p.Packet.i1 <- 222; p.Packet.i2 <- 333;
  p.Packet.i3 <- 444; p.Packet.i4 <- 555; p.Packet.i5 <- 666;
  p.Packet.i6 <- 777; p.Packet.i7 <- 888;
  for i = 0 to Packet.float_slots - 1 do p.Packet.f.(i) <- 3.14 done;
  p.Packet.flags <- Packet.flag_retx lor Packet.flag_fin;
  p.Packet.str <- "stale"

let clean (p : Packet.t) =
  p.Packet.i0 = 0 && p.Packet.i1 = 0 && p.Packet.i2 = 0 && p.Packet.i3 = 0
  && p.Packet.i4 = 0 && p.Packet.i5 = 0 && p.Packet.i6 = 0 && p.Packet.i7 = 0
  && Array.for_all (fun x -> Float.equal x 0.0) p.Packet.f
  && p.Packet.flags = 0 && p.Packet.str = ""

let recycle_never_stale =
  Test.make ~name:"release -> acquire never observes stale fields" ~count:300
    Gen.(pair (pair node_gen node_gen) (pair flow_gen (int_range 1 65_535)))
  @@ fun ((src, dst), (flow, size)) ->
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:4 ~kind:Packet.kind_raw in
  scribble p;
  Pool.release p;
  let q = Pool.acquire ~src ~dst ~flow ~size ~kind:Packet.kind_raw in
  let ok =
    q.Packet.src = src && q.Packet.dst = dst && q.Packet.flow = flow
    && q.Packet.size = size && q.Packet.kind = Packet.kind_raw && clean q
  in
  Pool.release q;
  ok

(* Run [f] with pool debug mode on, restoring the previous setting. *)
let with_debug f =
  let prev = Pool.debug_enabled () in
  Pool.set_debug true;
  Fun.protect ~finally:(fun () -> Pool.set_debug prev) f

let test_poison_catches_use_after_release () =
  with_debug @@ fun () ->
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:100 ~kind:Packet.kind_raw in
  p.Packet.i0 <- 42;
  p.Packet.f.(0) <- 1.5;
  Pool.release p;
  (* The planted stale reference must see sentinels, not plausible data. *)
  Alcotest.(check int) "int slot poisoned" Pool.poison_int p.Packet.i0;
  Alcotest.(check bool) "float slot poisoned" true
    (Float.equal p.Packet.f.(0) Pool.poison_float);
  Alcotest.(check bool) "free flag set" true
    (Packet.get_flag p Packet.flag_free);
  (* Re-acquisition hands the same record back fully reset. *)
  let q = Pool.acquire ~src:9 ~dst:8 ~flow:7 ~size:50 ~kind:Packet.kind_raw in
  Alcotest.(check bool) "reacquired record is clean" true (clean q);
  Pool.release q

let test_double_release_raises_in_debug () =
  with_debug @@ fun () ->
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:100 ~kind:Packet.kind_raw in
  Pool.release p;
  (match Pool.release p with
  | () -> Alcotest.fail "double release did not raise in debug mode"
  | exception Invalid_argument _ -> ());
  (* Drain the record so later tests start from a consistent pool. *)
  let q = Pool.acquire ~src:0 ~dst:0 ~flow:0 ~size:1 ~kind:Packet.kind_raw in
  Pool.release q

let test_double_release_counted_without_debug () =
  let before = Pool.double_release_count () in
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:10 ~kind:Packet.kind_raw in
  Pool.release p;
  (* Non-debug: the redundant release is ignored (first wins) but the
     counter records the bug for teardown asserts. *)
  Pool.release p;
  Alcotest.(check int) "double release counted" (before + 1)
    (Pool.double_release_count ());
  Alcotest.(check int) "record not double-pooled: live delta is -1 not -2"
    0
    (let q = Pool.acquire ~src:0 ~dst:0 ~flow:0 ~size:1 ~kind:Packet.kind_raw in
     let d = Pool.live_count () in
     Pool.release q;
     d - Pool.live_count () - 1);
  Pool.reset_double_release_count ();
  Alcotest.(check int) "counter reset" 0 (Pool.double_release_count ())

let test_clone_of_released_raises_in_debug () =
  with_debug @@ fun () ->
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:64 ~kind:Packet.kind_raw in
  Pool.release p;
  (match Pool.clone p with
  | _ -> Alcotest.fail "clone of released packet did not raise in debug mode"
  | exception Invalid_argument _ -> ());
  let q = Pool.acquire ~src:0 ~dst:0 ~flow:0 ~size:1 ~kind:Packet.kind_raw in
  Pool.release q

let test_clone_recycles_poisoned_record () =
  with_debug @@ fun () ->
  (* Release a scribbled record, then clone a live one: the clone must
     reuse the poisoned free-list record (LIFO pool: it sits on top) and
     come out an exact copy. *)
  let p = Pool.acquire ~src:1 ~dst:2 ~flow:3 ~size:50 ~kind:Packet.kind_raw in
  let dead = Pool.acquire ~src:9 ~dst:9 ~flow:9 ~size:9 ~kind:Packet.kind_raw in
  scribble dead;
  Pool.release dead;
  p.Packet.i0 <- 42;
  p.Packet.f.(1) <- 2.5;
  let c = Pool.clone p in
  Alcotest.(check bool) "clone reused the released record" true (c == dead);
  Alcotest.(check int) "same id (same logical packet)" p.Packet.id c.Packet.id;
  Alcotest.(check int) "slot copied, not poisoned" 42 c.Packet.i0;
  Alcotest.(check bool) "float slot copied" true
    (Float.equal c.Packet.f.(1) 2.5);
  Alcotest.(check bool) "clone is not marked free" false
    (Packet.get_flag c Packet.flag_free);
  Pool.release p;
  Pool.release c

let test_live_count_exact_across_domain_pool_jobs () =
  (* Pools and live counters are domain-local: each Domain_pool worker
     must see an exactly balanced acquire/clone/release ledger for its
     own jobs, independent of what other workers do. *)
  let dp = Leotp_util.Domain_pool.create ~size:2 in
  Fun.protect ~finally:(fun () -> Leotp_util.Domain_pool.shutdown dp)
  @@ fun () ->
  let job n =
    let d0 = Pool.live_count () in
    let ps =
      List.init n (fun i ->
          Pool.acquire ~src:i ~dst:i ~flow:i ~size:(i + 1)
            ~kind:Packet.kind_raw)
    in
    let cs = List.map Pool.clone ps in
    let mid = Pool.live_count () - d0 in
    List.iter Pool.release ps;
    List.iter Pool.release cs;
    (mid, Pool.live_count () - d0)
  in
  let results = Leotp_util.Domain_pool.map dp job [ 5; 17; 33; 9; 21; 2 ] in
  List.iter2
    (fun n (mid, fin) ->
      Alcotest.(check int)
        (Printf.sprintf "%d acquires + clones live mid-job" n)
        (2 * n) mid;
      Alcotest.(check int) "balanced after releases" 0 fin)
    [ 5; 17; 33; 9; 21; 2 ] results;
  Alcotest.(check int) "no double release across jobs" 0
    (Pool.double_release_count ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_pool"
    [
      ( "codecs",
        [
          qt interest_round_trip;
          qt data_round_trip;
          qt data_seg_round_trip;
          qt ack_seg_round_trip;
        ] );
      ( "pool",
        [
          qt recycle_never_stale;
          Alcotest.test_case "poison catches use-after-release" `Quick
            test_poison_catches_use_after_release;
          Alcotest.test_case "double release raises in debug" `Quick
            test_double_release_raises_in_debug;
          Alcotest.test_case "double release counted without debug" `Quick
            test_double_release_counted_without_debug;
          Alcotest.test_case "clone of released raises in debug" `Quick
            test_clone_of_released_raises_in_debug;
          Alcotest.test_case "clone recycles poisoned record" `Quick
            test_clone_recycles_poisoned_record;
          Alcotest.test_case "live_count exact across Domain_pool jobs" `Quick
            test_live_count_exact_across_domain_pool_jobs;
        ] );
    ]
