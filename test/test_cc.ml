(* Conformance tests for the TCP congestion-control implementations,
   each against an independent statement of its published law:

   - CUBIC vs the RFC 8312 window formula (W(t) = C(t-K)^3 + Wmax with
     the TCP-friendly floor),
   - Hybla's rho = SRTT/RTT0 scaling of slow start and congestion
     avoidance (Caini & Firrincieli 2004),
   - Vegas' alpha/beta once-per-RTT +-1 MSS adjustment,
   - BBR's pacing-gain cycle around the windowed-max bandwidth estimate.

   All tests drive the controllers through the public [Cc.t] record only
   (on_ack / on_loss / cwnd / pacing_rate). *)

module Cc = Leotp_tcp.Cc

let mss = 1000
let fmss = float_of_int mss

let ack cc ~now ?rtt ?bw ?(acked = mss) ?(inflight = 0) () =
  cc.Cc.on_ack
    {
      Cc.now;
      acked_bytes = acked;
      rtt_sample = rtt;
      bw_sample = bw;
      inflight;
    }

let check_close ?(eps = 1e-6) what expect got =
  if Float.abs (expect -. got) > eps *. Float.max 1.0 (Float.abs expect) then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expect got

(* ------------------------------------------------------------------ *)
(* CUBIC vs RFC 8312 *)

let cubic_beta = 0.7
let cubic_c = 0.4

(* Independent reference: the RFC 8312 congestion-avoidance update with
   a fixed SRTT (we feed no RTT samples, so the implementation's SRTT
   stays at its 100 ms initial value and HyStart never triggers). *)
let cubic_reference ~srtt ~w_max ~cwnd0 times =
  let w = ref (cwnd0 /. fmss) in
  let wmax = ref w_max in
  let epoch = ref None in
  let k = ref 0.0 in
  List.map
    (fun now ->
      (match !epoch with
      | Some _ -> ()
      | None ->
        epoch := Some now;
        if !wmax <= !w then begin
          wmax := !w;
          k := 0.0
        end
        else k := Float.cbrt (!wmax *. (1.0 -. cubic_beta) /. cubic_c));
      let t = now -. Option.get !epoch +. srtt in
      let target = (cubic_c *. ((t -. !k) ** 3.0)) +. !wmax in
      let w_est =
        (!wmax *. cubic_beta)
        +. (3.0 *. (1.0 -. cubic_beta) /. (1.0 +. cubic_beta) *. (t /. srtt))
      in
      let next =
        if target > !w then !w +. ((target -. !w) /. !w)
        else !w +. (0.01 /. !w)
      in
      w := Float.max next w_est;
      !w *. fmss)
    times

let test_cubic_rfc8312 () =
  let cc = Cc.create Cc.Cubic ~mss ~now:0.0 in
  check_close "initial window (RFC 6928)" (10.0 *. fmss) (cc.Cc.cwnd ());
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  (* Multiplicative decrease: beta = 0.7. *)
  check_close "beta reduction" (10.0 *. fmss *. cubic_beta) (cc.Cc.cwnd ());
  let cwnd0 = cc.Cc.cwnd () in
  let times = List.init 120 (fun i -> 0.1 *. float_of_int (i + 1)) in
  let expected = cubic_reference ~srtt:0.1 ~w_max:10.0 ~cwnd0 times in
  let got =
    List.map
      (fun now ->
        ack cc ~now ();
        cc.Cc.cwnd ())
      times
  in
  List.iteri
    (fun i (e, g) -> check_close (Printf.sprintf "cubic step %d" i) e g)
    (List.combine expected got);
  (* Shape: monotone in CA, plateaus near Wmax around t = K, then probes
     beyond it. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone growth" true (monotone got);
  Alcotest.(check bool)
    "probes past Wmax" true
    (List.exists (fun w -> w > 10.0 *. fmss) got)

let test_cubic_fast_convergence () =
  let cc = Cc.create Cc.Cubic ~mss ~now:0.0 in
  (* Two losses in a row: the second happens below Wmax, so RFC 8312
     S4.6 shrinks Wmax to cwnd*(2-beta)/2 instead of keeping cwnd. *)
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  cc.Cc.on_loss ~now:0.1 ~inflight:0;
  check_close "two beta reductions"
    (10.0 *. fmss *. cubic_beta *. cubic_beta)
    (cc.Cc.cwnd ());
  let cwnd0 = cc.Cc.cwnd () in
  let w_max_fc = 10.0 *. cubic_beta *. (2.0 -. cubic_beta) /. 2.0 in
  let times = List.init 30 (fun i -> 0.1 +. (0.1 *. float_of_int (i + 1))) in
  let expected = cubic_reference ~srtt:0.1 ~w_max:w_max_fc ~cwnd0 times in
  let without_fc =
    cubic_reference ~srtt:0.1 ~w_max:(10.0 *. cubic_beta) ~cwnd0 times
  in
  let got =
    List.map
      (fun now ->
        ack cc ~now ();
        cc.Cc.cwnd ())
      times
  in
  List.iteri
    (fun i (e, g) -> check_close (Printf.sprintf "fc step %d" i) e g)
    (List.combine expected got);
  (* The reduced Wmax must actually slow regrowth versus Wmax = cwnd. *)
  Alcotest.(check bool)
    "fast convergence regrows below the plain epoch" true
    (List.exists2 (fun fc plain -> fc < plain -. 1.0) got without_fc)

(* ------------------------------------------------------------------ *)
(* Hybla *)

let hybla_rtt0 = 0.025

let test_hybla_slow_start_rho1 () =
  let cc = Cc.create Cc.Hybla ~mss ~now:0.0 in
  let w0 = cc.Cc.cwnd () in
  (* No RTT samples: SRTT stays at RTT0, rho = 1, so slow start grows by
     (2^1 - 1) = 1 byte per acked byte, exactly standard TCP. *)
  ack cc ~now:0.01 ();
  check_close "rho=1 slow start" (w0 +. fmss) (cc.Cc.cwnd ())

let test_hybla_ca_rho1 () =
  let cc = Cc.create Cc.Hybla ~mss ~now:0.0 in
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  let w0 = cc.Cc.cwnd () in
  check_close "halved" (5.0 *. fmss) w0;
  ack cc ~now:0.01 ();
  (* CA with rho = 1: cwnd += rho^2 * MSS * acked / cwnd. *)
  check_close "rho=1 congestion avoidance"
    (w0 +. (fmss *. fmss /. w0))
    (cc.Cc.cwnd ())

let test_hybla_rho_scaling () =
  (* One 225 ms sample moves SRTT to 0.875*0.025 + 0.125*0.225 = 50 ms,
     i.e. rho = 2: congestion avoidance must grow rho^2 = 4x faster than
     the rho = 1 flow at the same window. *)
  let cc = Cc.create Cc.Hybla ~mss ~now:0.0 in
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  let w0 = cc.Cc.cwnd () in
  ack cc ~now:0.01 ~rtt:0.225 ();
  let srtt = (0.875 *. hybla_rtt0) +. (0.125 *. 0.225) in
  let rho = srtt /. hybla_rtt0 in
  check_close "srtt sets rho=2" 2.0 rho;
  check_close "rho^2 scaled growth"
    (w0 +. (rho *. rho *. fmss *. fmss /. w0))
    (cc.Cc.cwnd ())

let test_hybla_rho_floor () =
  (* Short-RTT paths must not be penalized: rho floors at 1. *)
  let cc = Cc.create Cc.Hybla ~mss ~now:0.0 in
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  let w0 = cc.Cc.cwnd () in
  (* 5 ms samples drag SRTT below RTT0. *)
  ack cc ~now:0.01 ~rtt:0.005 ();
  check_close "rho floors at 1"
    (w0 +. (fmss *. fmss /. w0))
    (cc.Cc.cwnd ())

(* ------------------------------------------------------------------ *)
(* Vegas *)

let test_vegas_alpha_beta () =
  let cc = Cc.create Cc.Vegas ~mss ~now:0.0 in
  (* Leave slow start deterministically. *)
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  let w0 = cc.Cc.cwnd () in
  (* Phase 1: RTT = baseRTT, so diff = 0 < alpha: each per-RTT update
     adds exactly one MSS, and acks between updates change nothing. *)
  ack cc ~now:0.01 ~rtt:0.1 ();
  check_close "first update: +1 MSS" (w0 +. fmss) (cc.Cc.cwnd ());
  ack cc ~now:0.02 ~rtt:0.1 ();
  ack cc ~now:0.05 ~rtt:0.1 ();
  check_close "no change within the RTT window" (w0 +. fmss) (cc.Cc.cwnd ());
  ack cc ~now:0.2 ~rtt:0.1 ();
  check_close "next RTT: +1 MSS again" (w0 +. (2.0 *. fmss)) (cc.Cc.cwnd ());
  (* Phase 2: inflate the RTT so diff > beta; the next update must step
     down by exactly one MSS (never a multiplicative cut). *)
  let w1 = cc.Cc.cwnd () in
  ack cc ~now:0.25 ~rtt:0.5 ();
  ack cc ~now:0.26 ~rtt:0.5 ();
  ack cc ~now:0.27 ~rtt:0.5 ();
  check_close "srtt inflation alone does not move cwnd" w1 (cc.Cc.cwnd ());
  ack cc ~now:0.5 ~rtt:0.5 ();
  check_close "diff > beta: -1 MSS" (w1 -. fmss) (cc.Cc.cwnd ())

let test_vegas_steps_bounded () =
  (* Whatever the RTT pattern, Vegas never moves the window by more than
     one MSS per update and never drops below the 2-MSS floor. *)
  let cc = Cc.create Cc.Vegas ~mss ~now:0.0 in
  cc.Cc.on_loss ~now:0.0 ~inflight:0;
  let rng = Leotp_util.Rng.create ~seed:5 in
  let prev = ref (cc.Cc.cwnd ()) in
  let ok = ref true in
  for i = 1 to 400 do
    let now = 0.05 *. float_of_int i in
    let rtt = 0.1 +. Leotp_util.Rng.float rng 0.6 in
    ack cc ~now ~rtt ();
    let w = cc.Cc.cwnd () in
    if Float.abs (w -. !prev) > fmss +. 1e-9 then ok := false;
    if w < (2.0 *. fmss) -. 1e-9 then ok := false;
    prev := w
  done;
  Alcotest.(check bool) "per-update step <= 1 MSS, floor 2 MSS" true !ok

(* ------------------------------------------------------------------ *)
(* BBR *)

let bbr_startup_gain = 2.885
let bbr_probe_gains = [ 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 ]

let test_bbr_pacing_is_gain_times_bw () =
  let cc = Cc.create Cc.Bbr ~mss ~now:0.0 in
  Alcotest.(check bool)
    "no pacing before a bandwidth sample" true
    (cc.Cc.pacing_rate () = None);
  let bw = 1_250_000.0 in
  ack cc ~now:0.05 ~rtt:0.05 ~bw ();
  (match cc.Cc.pacing_rate () with
  | Some r -> check_close "startup: 2.885 x bw" (bbr_startup_gain *. bw) r
  | None -> Alcotest.fail "expected a pacing rate");
  (* A larger sample raises the windowed max immediately. *)
  ack cc ~now:0.1 ~rtt:0.05 ~bw:(2.0 *. bw) ();
  match cc.Cc.pacing_rate () with
  | Some r ->
    check_close "windowed max tracks up" (bbr_startup_gain *. 2.0 *. bw) r
  | None -> Alcotest.fail "expected a pacing rate"

(* Drive Startup to full-pipe (3 rounds without bandwidth growth), then
   Drain, then collect one full ProbeBW gain cycle. *)
let test_bbr_gain_cycle () =
  let cc = Cc.create Cc.Bbr ~mss ~now:0.0 in
  let bw = 1_250_000.0 in
  let now = ref 0.0 in
  let step ?(inflight = 100_000) () =
    now := !now +. 0.2;
    ack cc ~now:!now ~rtt:0.05 ~bw ~inflight ()
  in
  let gain () =
    match cc.Cc.pacing_rate () with
    | Some r -> r /. bw
    | None -> Alcotest.fail "expected a pacing rate"
  in
  (* Startup: constant bandwidth; full-pipe detection takes 3 spaced
     rounds, after which the controller drains at 1/2.885. *)
  let drained = ref false in
  for _ = 1 to 10 do
    if not !drained then begin
      step ();
      if Float.abs (gain () -. (1.0 /. bbr_startup_gain)) < 1e-6 then
        drained := true
    end
  done;
  Alcotest.(check bool) "reaches Drain at 1/startup gain" true !drained;
  (* Inflight at/below BDP ends Drain. *)
  step ~inflight:0 ();
  check_close "ProbeBW entry gain" 1.0 (gain ());
  (* Each further ack is spaced past min_rtt, so each advances the
     8-phase gain cycle: 5x cruise, probe 1.25, compensate 0.75, cruise. *)
  let observed =
    List.init 8 (fun _ ->
        step ();
        gain ())
  in
  let expected = [ 1.0; 1.0; 1.0; 1.0; 1.0; 1.25; 0.75; 1.0 ] in
  List.iteri
    (fun i (e, g) -> check_close (Printf.sprintf "cycle phase %d" i) e g)
    (List.combine expected observed);
  (* The cycle is the canonical BBR gain multiset. *)
  let sorted = List.sort compare observed in
  Alcotest.(check bool)
    "gains are a rotation of the BBR cycle" true
    (sorted = List.sort compare bbr_probe_gains)

let test_bbr_cwnd_tracks_bdp () =
  let cc = Cc.create Cc.Bbr ~mss ~now:0.0 in
  let bw = 1_250_000.0 in
  ack cc ~now:0.05 ~rtt:0.05 ~bw ();
  (* cwnd_gain x BDP with BDP = bw x min_rtt; startup cwnd gain 2.885. *)
  check_close "cwnd = gain x BDP"
    (bbr_startup_gain *. bw *. 0.05)
    (cc.Cc.cwnd ());
  (* Loss does not touch the model (BBR v1 ignores loss). *)
  let w = cc.Cc.cwnd () in
  cc.Cc.on_loss ~now:0.06 ~inflight:0;
  check_close "loss-blind" w (cc.Cc.cwnd ())

let () =
  Alcotest.run "leotp_cc"
    [
      ( "cubic",
        [
          Alcotest.test_case "RFC 8312 trajectory" `Quick test_cubic_rfc8312;
          Alcotest.test_case "fast convergence" `Quick
            test_cubic_fast_convergence;
        ] );
      ( "hybla",
        [
          Alcotest.test_case "slow start rho=1" `Quick
            test_hybla_slow_start_rho1;
          Alcotest.test_case "CA rho=1" `Quick test_hybla_ca_rho1;
          Alcotest.test_case "rho scaling" `Quick test_hybla_rho_scaling;
          Alcotest.test_case "rho floor" `Quick test_hybla_rho_floor;
        ] );
      ( "vegas",
        [
          Alcotest.test_case "alpha/beta bounds" `Quick test_vegas_alpha_beta;
          Alcotest.test_case "bounded steps" `Quick test_vegas_steps_bounded;
        ] );
      ( "bbr",
        [
          Alcotest.test_case "pacing = gain x bw" `Quick
            test_bbr_pacing_is_gain_times_bw;
          Alcotest.test_case "gain cycle" `Quick test_bbr_gain_cycle;
          Alcotest.test_case "cwnd tracks BDP" `Quick test_bbr_cwnd_tracks_bdp;
        ] );
    ]
