(* TRACE_PATH schema round-trip / diagnostics, and the trace-driven
   replay determinism contract (replay digest == live-generation
   digest). *)

module Path_trace = Leotp_net.Path_trace
module Pathtrace = Leotp_scenario.Pathtrace

let mk_meta ?(seed = 7) ?(src = "Beijing") ?(dst = "Shanghai")
    ?(isls = false) ?(step = 1.0) ?(horizon = 10.0) () =
  { Path_trace.seed; src; dst; isls; step; horizon }

let hop ?(delay = 0.004) ?(bw = 10.0) ?(plr = 0.01) ?(kind = Path_trace.Gsl)
    () =
  { Path_trace.delay; bw_mbps = bw; plr; kind }

let route ?(ho = false) time hops =
  { Path_trace.time; event = Path_trace.Route { hops; handover = ho } }

let dark time = { Path_trace.time; event = Path_trace.No_route }

let mk ?meta records =
  let meta = match meta with Some m -> m | None -> mk_meta () in
  { Path_trace.meta; records }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* First-occurrence replacement, enough to corrupt canonical output. *)
let replace ~sub ~by s =
  let ns = String.length s and nsub = String.length sub in
  let rec find i =
    if i + nsub > ns then None
    else if String.sub s i nsub = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "replace: %S not found" sub
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + nsub) (ns - i - nsub)

(* ------------------------------------------------------------------ *)
(* Canonical writer / strict parser *)

let test_write_parse_fixture () =
  let tr =
    mk
      [
        route 0.0 [| hop (); hop ~kind:Path_trace.Isl ~plr:0.001 () |];
        dark 1.0;
        route ~ho:true 2.0 [| hop ~delay:0.005 ~bw:7.25 () |];
      ]
  in
  let s = Path_trace.to_string tr in
  (match Path_trace.of_string s with
  | Error m -> Alcotest.failf "fixture failed to parse: %s" m
  | Ok parsed ->
    Alcotest.(check string) "byte-identical reprint" s
      (Path_trace.to_string parsed);
    Alcotest.(check int) "routes" 2 (Path_trace.route_count parsed);
    Alcotest.(check int) "handovers" 1 (Path_trace.handover_count parsed);
    Alcotest.(check int) "max hops" 2 (Path_trace.max_hop_count parsed));
  (* String fields with the two supported escapes round-trip too. *)
  let tr = mk ~meta:(mk_meta ~src:"A\"B\\C" ~dst:"x y" ()) [ dark 0.0 ] in
  let s = Path_trace.to_string tr in
  match Path_trace.of_string s with
  | Error m -> Alcotest.failf "escaped fixture failed to parse: %s" m
  | Ok parsed ->
    Alcotest.(check string) "escaped src" "A\"B\\C"
      parsed.Path_trace.meta.Path_trace.src;
    Alcotest.(check string) "escaped reprint" s (Path_trace.to_string parsed)

let expect_error ~substring s =
  match Path_trace.of_string s with
  | Ok _ -> Alcotest.failf "parse unexpectedly succeeded (want %S)" substring
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" m substring)
      true (contains m substring)

let test_malformed_diagnostics () =
  let good =
    Path_trace.to_string
      (mk [ route 0.0 [| hop () |]; route 1.0 [| hop () |]; dark 2.0 ])
  in
  (* A misspelled key: the error names the offending line.  [good] has
     one "plr" per route record; the first sits on line 2. *)
  expect_error ~substring:"line 2" (replace ~sub:"\"plr\"" ~by:"\"plx\"" good);
  (* Out-of-range values. *)
  expect_error ~substring:"[0, 1]" (replace ~sub:"\"plr\":0.01" ~by:"\"plr\":1.5" good);
  expect_error ~substring:"positive" (replace ~sub:"\"bw\":10" ~by:"\"bw\":0" good);
  expect_error ~substring:"link kind" (replace ~sub:"\"k\":\"gsl\"" ~by:"\"k\":\"lsr\"" good);
  (* Non-finite and non-numeric fields. *)
  expect_error ~substring:"finite" (replace ~sub:"\"t\":1" ~by:"\"t\":1e999" good);
  expect_error ~substring:"number" (replace ~sub:"\"t\":1" ~by:"\"t\":x" good);
  (* Times must be strictly increasing. *)
  expect_error ~substring:"strictly increasing"
    (replace ~sub:"\"t\":1" ~by:"\"t\":0" good);
  (* Trailing garbage on a line. *)
  expect_error ~substring:"line 4" (replace ~sub:"true}\n" ~by:"true} \n" good);
  (* Truncated line. *)
  expect_error ~substring:"line 3" (replace ~sub:"\"ho\":false}\n{\"t\":2" ~by:"\"ho\":fal\n{\"t\":2" good);
  (* Empty input. *)
  expect_error ~substring:"line 1" "";
  (* Unknown schema. *)
  expect_error ~substring:"unknown schema"
    (replace ~sub:"\"schema\":\"TRACE_PATH\"" ~by:"\"schema\":\"TRACE_PKT\"" good)

let test_version_mismatch () =
  let good = Path_trace.to_string (mk [ dark 0.0 ]) in
  expect_error ~substring:"unsupported TRACE_PATH version 2"
    (replace ~sub:"\"version\":1" ~by:"\"version\":2" good)

(* ------------------------------------------------------------------ *)
(* QCheck: write -> parse -> write is the identity on bytes for any
   valid trace. *)

let trace_gen =
  let open QCheck2 in
  let hop_gen =
    Gen.(
      let* delay = float_range 0.0 0.2 in
      let* bw = float_range 0.1 200.0 in
      let* plr = float_range 0.0 1.0 in
      let* kind = oneofl [ Path_trace.Gsl; Path_trace.Isl ] in
      pure { Path_trace.delay; bw_mbps = bw; plr; kind })
  in
  let event_gen =
    Gen.(
      let* is_dark = frequency [ (1, pure true); (3, pure false) ] in
      if is_dark then pure Path_trace.No_route
      else
        let* hops = array_size (int_range 1 4) hop_gen in
        let* handover = bool in
        pure (Path_trace.Route { hops; handover }))
  in
  Gen.(
    let* seed = int_range 0 10_000 in
    let* src = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* dst = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* isls = bool in
    let* step = float_range 0.01 10.0 in
    let* horizon = float_range 0.0 100.0 in
    let* t0 = float_range 0.0 1.0 in
    let* increments = list_size (int_bound 30) (float_range 0.001 5.0) in
    let* events = list_size (pure (List.length increments + 1)) event_gen in
    let times =
      List.rev
        (List.fold_left (fun acc dt -> (List.hd acc +. dt) :: acc) [ t0 ]
           increments)
    in
    let records =
      List.map2 (fun time event -> { Path_trace.time; event }) times events
    in
    pure
      {
        Path_trace.meta = { Path_trace.seed; src; dst; isls; step; horizon };
        records;
      })

let roundtrip_prop =
  let open QCheck2 in
  Test.make ~name:"write -> parse -> write is byte-identical" ~count:200
    ~print:(fun tr -> Path_trace.to_string tr)
    trace_gen
    (fun tr ->
      let s = Path_trace.to_string tr in
      match Path_trace.of_string s with
      | Error m -> Test.fail_reportf "valid trace rejected: %s" m
      | Ok parsed -> String.equal s (Path_trace.to_string parsed))

(* ------------------------------------------------------------------ *)
(* Derived outage statistics *)

let test_outage_stats () =
  let tr =
    mk
      [
        route 0.0 [| hop () |];
        dark 1.0;
        dark 2.0;
        route 3.0 [| hop () |];
        dark 4.0;
      ]
  in
  (match Path_trace.outage_intervals tr with
  | [ (a1, b1); (a2, b2) ] ->
    (* First run closes at the next route sample; the trailing run
       closes one step past its last dark sample. *)
    Alcotest.(check (float 1e-9)) "run 1 start" 1.0 a1;
    Alcotest.(check (float 1e-9)) "run 1 stop" 3.0 b1;
    Alcotest.(check (float 1e-9)) "run 2 start" 4.0 a2;
    Alcotest.(check (float 1e-9)) "run 2 stop" 5.0 b2
  | l -> Alcotest.failf "expected 2 intervals, got %d" (List.length l));
  Alcotest.(check (float 1e-9)) "fraction" 0.6 (Path_trace.outage_fraction tr);
  Alcotest.(check (list (float 1e-9)))
    "no dark, no intervals" []
    (List.map fst (Path_trace.outage_intervals (mk [ route 0.0 [| hop () |] ])))

(* ------------------------------------------------------------------ *)
(* Generator determinism and the replay contract.  One short bent-pipe
   pair keeps this a few seconds of wall clock. *)

let quick_spec =
  {
    Pathtrace.src = "Beijing";
    dst = "Shanghai";
    isls = false;
    horizon = 30.0;
    step = 1.0;
    route_epoch = 1.0;
    seed = 11;
  }

let test_generate_deterministic () =
  let a = Path_trace.to_string (Pathtrace.generate quick_spec) in
  let b = Path_trace.to_string (Pathtrace.generate quick_spec) in
  Alcotest.(check string) "same spec, same bytes" a b;
  let c =
    Path_trace.to_string (Pathtrace.generate { quick_spec with seed = 12 })
  in
  Alcotest.(check bool) "seed reaches the trace" false (String.equal a c)

let test_replay_digest_matches_live () =
  let tr = Pathtrace.generate quick_spec in
  Alcotest.(check bool) "trace has routes" true (Path_trace.route_count tr > 0);
  let live = Pathtrace.run tr in
  let reparsed =
    match Path_trace.of_string (Path_trace.to_string tr) with
    | Ok t -> t
    | Error m -> Alcotest.failf "reparse failed: %s" m
  in
  let replay = Pathtrace.run reparsed in
  Alcotest.(check string) "digest (replay == live)" live.Pathtrace.digest
    replay.Pathtrace.digest;
  Alcotest.(check int) "switch count agrees" live.Pathtrace.switches
    replay.Pathtrace.switches;
  (* The digest is a real witness: a different transport seed diverges. *)
  let other = Pathtrace.run ~seed:999 tr in
  Alcotest.(check bool) "seed matters" false
    (String.equal live.Pathtrace.digest other.Pathtrace.digest)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "leotp_pathtrace"
    [
      ( "schema",
        [
          Alcotest.test_case "write/parse fixture" `Quick
            test_write_parse_fixture;
          Alcotest.test_case "malformed diagnostics" `Quick
            test_malformed_diagnostics;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          qc roundtrip_prop;
        ] );
      ( "stats",
        [ Alcotest.test_case "outage intervals" `Quick test_outage_stats ] );
      ( "replay",
        [
          Alcotest.test_case "generate deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "replay digest == live" `Quick
            test_replay_digest_matches_live;
        ] );
    ]
