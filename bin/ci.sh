#!/bin/sh
# CI smoke check: lint + build + full test suite, then an end-to-end
# bench run (fixed quick subset, 2 worker domains) that exercises the
# parallel runner and the BENCH_*.json perf records.
set -eu
cd "$(dirname "$0")/.."

# Static analysis first: determinism & hygiene rules plus the --race
# interprocedural domain-safety pass, the --own packet-ownership /
# allocation-effect / time-taint pass and the --dim units-of-measure
# pass (see LINT.md).  Fails on any error-severity finding; LINT.json
# sits next to the BENCH_*.json records for trend tracking (per-pass
# wall times under timings_ms).
dune build @lint
dune exec bin/leotp_lint.exe -- --race --own --dim --quiet --json LINT.json \
  lib bench bin

# The rules table in LINT.md is generated: it must match the registry
# (`--rules --markdown`) byte for byte, so a new or reworded rule that
# skips the docs fails CI here.
dune exec bin/leotp_lint.exe -- --rules --markdown > "$(pwd)/_rules.md.tmp"
awk '/<!-- rules:begin -->/{f=1;next} /<!-- rules:end -->/{f=0} f' LINT.md \
  | diff -u - _rules.md.tmp || {
  rm -f _rules.md.tmp
  echo "ci.sh: LINT.md rules table is stale; regenerate with" >&2
  echo "  dune exec bin/leotp_lint.exe -- --rules --markdown" >&2
  exit 1
}
rm -f _rules.md.tmp

dune build @runtest

# Dynamic backstop for the static race pass: it cannot follow thunks
# stored in data structures (Runner.map job lists), so re-run the
# parallel-determinism tests on 2 worker domains as well.
LEOTP_TEST_JOBS=2 dune exec test/test_scenario.exe -- test harness
LEOTP_TEST_JOBS=2 dune exec test/test_faults.exe -- test determinism

# Perf smoke + regression gate: the quick figure subset writes its
# BENCH_*.json records and the gate compares minor_words_per_packet
# against the checked-in baselines (bench/baselines.json), printing a
# before/after line per figure and exiting non-zero, naming the
# offending metric, on any regression beyond the tolerance band.
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
dune exec bench/main.exe -- --perf-smoke --jobs 2 --out-dir "$out_dir" \
  --gate bench/baselines.json

for id in fig3 fig10 fig12 pathtrace; do
  test -s "$out_dir/BENCH_$id.json" || {
    echo "ci.sh: missing perf record BENCH_$id.json" >&2
    exit 1
  }
done

# Path-trace smoke: generate a short bent-pipe TRACE_PATH timeline, then
# replay the written file with the invariant checker attached.  Both runs
# print the packet-trace digest, and they must match — the bit-identical
# replay guarantee (see EXPERIMENTS.md, "Trace-driven paths").
gen_out="$(dune exec bench/main.exe -- --path-trace gen \
  --trace-file "$out_dir/TRACE_path.jsonl" --pair "Beijing:Shanghai" \
  --bent-pipe --horizon 60 --step 1 --route-epoch 1)"
printf '%s\n' "$gen_out"
replay_out="$(dune exec bench/main.exe -- --path-trace replay \
  --trace-file "$out_dir/TRACE_path.jsonl" --check)"
printf '%s\n' "$replay_out"
gen_digest="$(printf '%s\n' "$gen_out" | sed -n 's/^  digest //p')"
replay_digest="$(printf '%s\n' "$replay_out" | sed -n 's/^  digest //p')"
if [ -z "$gen_digest" ] || [ "$gen_digest" != "$replay_digest" ]; then
  echo "ci.sh: path-trace digest mismatch (gen='$gen_digest'" \
    "replay='$replay_digest')" >&2
  exit 1
fi

# Many-flow smoke: ~500 open-loop flows over the live constellation
# with the invariant checker attached, gated on the headline
# flow_sim_seconds_per_wall_second metric (higher is better; the floor
# in bench/baselines.json has its own generous tolerance band).  The
# combined digest must be identical for any --jobs, so running on 2
# worker domains here also re-checks shard determinism.
dune exec bench/main.exe -- --manyflow 500 --seed 1 --check --jobs 2 \
  --out-dir "$out_dir" --gate bench/baselines.json
test -s "$out_dir/BENCH_manyflow.json" || {
  echo "ci.sh: missing perf record BENCH_manyflow.json" >&2
  exit 1
}

# Fault lab: a seeded random fault schedule over a LEOTP transfer, with
# the five trace invariants checked (non-zero exit on any violation).
dune exec bench/main.exe -- --quick --out-dir "$out_dir" \
  --faults random:7:12

# Oracle fuzz sweep: 25 random scenarios x (LEOTP + every TCP variant)
# replayed against the differential sender model and per-CC semantic
# oracles (see EXPERIMENTS.md).  Exits non-zero on any divergence,
# printing a --fuzz-replay spec for each shrunk failure.
dune exec bench/main.exe -- --fuzz 25 --seed 7 --jobs 2

echo "ci.sh: OK"
