(* leotp-lint CLI: scan .ml trees, print text findings, optionally write
   a JSON report.

   Usage: leotp_lint.exe [--race] [--own] [--dim] [--json FILE] [--rules
   [--markdown]] [PATH ...]
   Default paths: lib bench bin (relative to the cwd).

   Exit codes (bin/ci.sh relies on this contract):
     0  clean, or warning-severity findings only
     1  at least one error-severity finding
     2  internal failure: unreadable/unparseable input or a crash in
        the analyzer itself *)

module Finding = Leotp_lint.Finding
module Rules = Leotp_lint.Rules
module Engine = Leotp_lint.Engine
module Race = Leotp_lint.Race
module Own = Leotp_lint.Own
module Dim = Leotp_lint.Dim

let usage =
  "leotp_lint [--race] [--own] [--dim] [--json FILE] [--rules \
   [--markdown]] [--quiet] [PATH ...]\n\
   Static determinism/hygiene analysis (see LINT.md).  Default paths: \
   lib bench bin.\n\n\
   Exit codes: 0 = no error-severity findings (warnings allowed);\n\
   \            1 = error-severity findings;\n\
   \            2 = internal/parse failure (unreadable or unparseable \
   input,\n\
   \                or an analyzer crash).\n\n\
   Options:"

(* The LINT.md rules table is generated from the registry so the docs
   cannot drift: bin/ci.sh diffs this output against the marker-fenced
   section of LINT.md. *)
let markdown_cell s =
  String.concat "\\|" (String.split_on_char '|' s)

let rule_scope_label (r : Rules.t) =
  let scopes = [ Rules.Lib; Rules.Bench; Rules.Bin; Rules.Other ] in
  let on = List.filter r.applies scopes in
  if List.length on = List.length scopes then "everywhere"
  else
    String.concat ", "
      (List.filter_map
         (fun s ->
           if r.applies s then
             Some
               (match s with
               | Rules.Lib -> "`lib/`"
               | Rules.Bench -> "`bench/`"
               | Rules.Bin -> "`bin/`"
               | Rules.Other -> "other")
           else None)
         scopes)

let print_rules_markdown () =
  print_endline "| # | rule id | severity | scope | rationale |";
  print_endline "|---|---------|----------|-------|-----------|";
  List.iteri
    (fun i (r : Rules.t) ->
      Printf.printf "| %d | `%s` | %s | %s | %s |\n" (i + 1) r.id
        (Finding.severity_to_string r.severity)
        (rule_scope_label r) (markdown_cell r.doc))
    Rules.all

let () =
  let json_out = ref None in
  let list_rules = ref false in
  let markdown = ref false in
  let quiet = ref false in
  let race = ref false in
  let own = ref false in
  let dim = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--race",
        Arg.Set race,
        " also run the interprocedural domain-safety (race) pass" );
      ( "--own",
        Arg.Set own,
        " also run the interprocedural ownership/allocation/time-taint \
         (own) pass" );
      ( "--dim",
        Arg.Set dim,
        " also run the interprocedural dimensional-analysis (units of \
         measure) pass" );
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE write a JSON report to FILE" );
      ("--rules", Arg.Set list_rules, " list rule ids with rationale and exit");
      ( "--markdown",
        Arg.Set markdown,
        " with --rules: emit the LINT.md rules table (generated; ci diffs \
         it against the docs)" );
      ("--quiet", Arg.Set quiet, " suppress per-finding text output");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    if !markdown then print_rules_markdown ()
    else
      List.iter
        (fun (r : Rules.t) ->
          Printf.printf "%-32s %-8s %s\n" r.id
            (Finding.severity_to_string r.severity)
            r.doc)
        Rules.all;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bench"; "bin" ] | ps -> ps
  in
  let timings = ref [] in
  let timed pass f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    timings := (pass, (Unix.gettimeofday () -. t0) *. 1000.) :: !timings;
    r
  in
  match
    let { Engine.files; findings } =
      timed "rules" (fun () -> Engine.scan paths)
    in
    let findings =
      if !race then
        List.sort_uniq Finding.compare
          (timed "race" (fun () -> Race.scan paths) @ findings)
      else findings
    in
    let findings =
      if !own then
        List.sort_uniq Finding.compare
          (timed "own" (fun () -> Own.scan paths) @ findings)
      else findings
    in
    let findings =
      if !dim then
        List.sort_uniq Finding.compare
          (timed "dim" (fun () -> Dim.scan paths) @ findings)
      else findings
    in
    (files, findings)
  with
  | exception e ->
    Printf.eprintf "leotp-lint: internal failure: %s\n" (Printexc.to_string e);
    exit 2
  | files, findings ->
    if not !quiet then
      List.iter (fun f -> print_endline (Finding.to_text f)) findings;
    (match !json_out with
    | Some file ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc
            (Finding.report_json ~timings:(List.rev !timings) ~files findings))
    | None -> ());
    let errors = Finding.count Finding.Error findings in
    let warnings = Finding.count Finding.Warning findings in
    Printf.printf "leotp-lint: %d file(s), %d error(s), %d warning(s)\n" files
      errors warnings;
    let parse_failures =
      List.exists (fun f -> f.Finding.rule = "parse-error") findings
    in
    exit (if parse_failures then 2 else if errors > 0 then 1 else 0)
