(* leotp-lint CLI: scan .ml trees, print text findings, optionally write
   a JSON report, exit non-zero iff any error-severity finding.

   Usage: leotp_lint.exe [--json FILE] [--rules] [PATH ...]
   Default paths: lib bench bin (relative to the cwd). *)

module Finding = Leotp_lint.Finding
module Rules = Leotp_lint.Rules
module Engine = Leotp_lint.Engine

let () =
  let json_out = ref None in
  let list_rules = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE write a JSON report to FILE" );
      ("--rules", Arg.Set list_rules, " list rule ids with rationale and exit");
      ("--quiet", Arg.Set quiet, " suppress per-finding text output");
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "leotp_lint [--json FILE] [--rules] [--quiet] [PATH ...]";
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        Printf.printf "%-32s %-8s %s\n" r.id
          (Finding.severity_to_string r.severity)
          r.doc)
      Rules.all;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bench"; "bin" ] | ps -> ps
  in
  let { Engine.files; findings } = Engine.scan paths in
  if not !quiet then
    List.iter (fun f -> print_endline (Finding.to_text f)) findings;
  (match !json_out with
  | Some file ->
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc (Finding.report_json ~files findings))
  | None -> ());
  let errors = Finding.count Finding.Error findings in
  let warnings = Finding.count Finding.Warning findings in
  Printf.printf "leotp-lint: %d file(s), %d error(s), %d warning(s)\n" files
    errors warnings;
  exit (if errors > 0 then 1 else 0)
